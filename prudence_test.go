package prudence_test

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"prudence"
)

func newSystem(t *testing.T, cfg prudence.Config) *prudence.System {
	t.Helper()
	sys, err := prudence.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestDefaultsAndKinds(t *testing.T) {
	sys := newSystem(t, prudence.Config{})
	if got := sys.AllocatorName(); got != "prudence" {
		t.Fatalf("default allocator = %q", got)
	}
	if sys.NumCPU() != 8 {
		t.Fatalf("default CPUs = %d", sys.NumCPU())
	}
	if sys.TotalBytes() != 16384*prudence.PageSize {
		t.Fatalf("default memory = %d", sys.TotalBytes())
	}
	slubSys := newSystem(t, prudence.Config{Allocator: prudence.SLUB, CPUs: 2})
	if got := slubSys.AllocatorName(); got != "slub" {
		t.Fatalf("slub system reports %q", got)
	}
	if _, err := prudence.New(prudence.Config{Allocator: prudence.AllocatorKind("bogus")}); err == nil {
		t.Fatal("bogus allocator kind accepted")
	}
	if _, err := prudence.New(prudence.Config{Reclamation: prudence.ReclamationKind("bogus")}); err == nil {
		t.Fatal("bogus reclamation kind accepted")
	}
	if _, err := prudence.New(prudence.Config{CPUs: -1}); err == nil {
		t.Fatal("negative CPU count accepted")
	}
	if _, err := prudence.New(prudence.Config{MemoryPages: -1}); err == nil {
		t.Fatal("negative arena size accepted")
	}
}

// MustNew panics on the same configurations New rejects with an error.
func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid config did not panic")
		}
	}()
	prudence.MustNew(prudence.Config{Allocator: prudence.AllocatorKind("bogus")})
}

func TestCacheLifecycle(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 512})
	c := sys.NewCache("objs", 128)
	if c.Name() != "objs" || c.ObjectSize() != 128 {
		t.Fatalf("cache identity: %q/%d", c.Name(), c.ObjectSize())
	}
	obj, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if obj.IsZero() || len(obj.Bytes()) != 128 {
		t.Fatal("bad object handle")
	}
	copy(obj.Bytes(), "payload")
	c.FreeDeferred(0, obj)
	sys.Synchronize()
	st := c.Stats()
	if st.Allocs != 1 || st.DeferredFrees != 1 {
		t.Fatalf("stats: %+v", st)
	}
	ft, allocated, requested := c.Fragmentation()
	if requested != 0 || allocated <= 0 || ft <= 0 {
		t.Fatalf("fragmentation: %v %d %d", ft, allocated, requested)
	}
	c.Drain()
	if sys.UsedBytes() != 0 {
		t.Fatalf("%d bytes in use after drain", sys.UsedBytes())
	}
}

func TestOOMSurface(t *testing.T) {
	// 4096 B objects live in order-3 (8-page) slabs: an 8-page arena
	// fits exactly one slab, so the second grow must fail.
	sys := newSystem(t, prudence.Config{CPUs: 1, MemoryPages: 8})
	c := sys.NewCache("big", 4096)
	var objs []prudence.Object
	for {
		o, err := c.Malloc(0)
		if err != nil {
			if !errors.Is(err, prudence.ErrOutOfMemory) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		objs = append(objs, o)
	}
	if len(objs) == 0 {
		t.Fatal("no allocations before OOM")
	}
	for _, o := range objs {
		c.Free(0, o)
	}
	c.Drain()
}

func TestRunOnAllCPUs(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 4, MemoryPages: 1024})
	c := sys.NewCache("conc", 64)
	var total atomic.Int64
	sys.RunOnAllCPUs(func(cpu int) {
		for i := 0; i < 200; i++ {
			o, err := c.Malloc(cpu)
			if err != nil {
				t.Errorf("cpu %d: %v", cpu, err)
				return
			}
			c.FreeDeferred(cpu, o)
			sys.QuiescentState(cpu)
			total.Add(1)
		}
	})
	if total.Load() != 800 {
		t.Fatalf("completed %d ops", total.Load())
	}
	// Drain cannot return until the deferred frees' grace periods have
	// elapsed, so the counter check after it is race-free (checking right
	// after the loop raced with the engine's minimum GP interval).
	c.Drain()
	if sys.GracePeriods() == 0 {
		t.Fatal("no grace periods elapsed")
	}
}

func TestListFacade(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 1024})
	c := sys.NewCache("list", 64)
	l := sys.NewList(c)
	for i := uint64(0); i < 10; i++ {
		if err := l.Insert(0, i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	buf := make([]byte, 8)
	if _, ok := l.Lookup(0, 3, buf); !ok || string(buf[:2]) != "v3" {
		t.Fatalf("Lookup(3) = %q, %v", buf[:2], ok)
	}
	if ok, err := l.Update(0, 3, []byte("new")); err != nil || !ok {
		t.Fatalf("Update: %v %v", ok, err)
	}
	count := 0
	l.Walk(0, func(uint64, []byte) bool { count++; return true })
	if count != 10 {
		t.Fatalf("Walk visited %d", count)
	}
	for i := uint64(0); i < 10; i++ {
		if ok, err := l.Delete(0, i); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
	}
	c.Drain()
	if sys.UsedBytes() != 0 {
		t.Fatal("memory retained after list teardown")
	}
}

func TestMapFacade(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 1024})
	c := sys.NewCache("map", 64)
	m := sys.NewMap(c, 8)
	for i := uint64(0); i < 50; i++ {
		if err := m.Put(0, i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 50 || m.Buckets() != 8 {
		t.Fatalf("Len=%d Buckets=%d", m.Len(), m.Buckets())
	}
	buf := make([]byte, 4)
	if _, ok := m.Get(0, 25, buf); !ok {
		t.Fatal("Get(25) missing")
	}
	if err := m.Resize(0, 32); err != nil {
		t.Fatal(err)
	}
	if m.Buckets() != 32 || m.Len() != 50 {
		t.Fatalf("after resize: Len=%d Buckets=%d", m.Len(), m.Buckets())
	}
	seen := 0
	m.ForEach(0, func(uint64, []byte) bool { seen++; return true })
	if seen != 50 {
		t.Fatalf("ForEach visited %d", seen)
	}
	for i := uint64(0); i < 50; i++ {
		if ok, err := m.Delete(0, i); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
	}
	c.Drain()
}

// The read-side primitives work through the facade: a reader inside
// ReadLock keeps a defer-freed object's memory intact.
func TestReadSideProtection(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 512})
	c := sys.NewCache("prot", 64)
	obj, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(obj.Bytes(), "protected")
	data := obj.Bytes()

	done := make(chan struct{})
	sys.RunOnAllCPUs(func(cpu int) {
		switch cpu {
		case 1:
			sys.ReadLock(1)
			<-done // writer has defer-freed and churned
			if string(data[:9]) != "protected" {
				t.Error("reader observed reclaimed memory")
			}
			sys.ReadUnlock(1)
		case 0:
			c.FreeDeferred(0, obj)
			for i := 0; i < 100; i++ {
				o, err := c.Malloc(0)
				if err != nil {
					t.Error(err)
					break
				}
				copy(o.Bytes(), "XXXXXXXXXXXX")
				c.Free(0, o)
				sys.QuiescentState(0)
			}
			close(done)
		}
	})
	c.Drain()
}

func TestTreeFacade(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 1024})
	c := sys.NewCache("tree", 64)
	tr := sys.NewTree(c)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Put(0, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	buf := make([]byte, 1)
	if _, ok := tr.Get(0, 42, buf); !ok || buf[0] != 42 {
		t.Fatalf("Get(42) = %v, %v", buf[0], ok)
	}
	if mn, ok := tr.Min(0); !ok || mn != 0 {
		t.Fatalf("Min = %d, %v", mn, ok)
	}
	if mx, ok := tr.Max(0); !ok || mx != 99 {
		t.Fatalf("Max = %d, %v", mx, ok)
	}
	var keys []uint64
	tr.Range(0, 10, 15, func(k uint64, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 6 || keys[0] != 10 || keys[5] != 15 {
		t.Fatalf("Range = %v", keys)
	}
	for i := uint64(0); i < 100; i++ {
		if ok, err := tr.Delete(0, i); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	c.Drain()
	if sys.UsedBytes() != 0 {
		t.Fatal("memory retained after tree teardown")
	}
}

func TestKmallocFacade(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 4096})
	k := sys.NewKmalloc()
	o, err := k.Malloc(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Bytes()) != 128 {
		t.Fatalf("kmalloc(100) class = %d, want 128", len(o.Bytes()))
	}
	k.Free(0, o)
	o2, err := k.Malloc(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(o2.Bytes()) != 4096 {
		t.Fatalf("kmalloc(3000) class = %d, want 4096", len(o2.Bytes()))
	}
	k.FreeDeferred(0, o2)
	if _, err := k.Malloc(0, 5000); err == nil {
		t.Fatal("kmalloc beyond largest class succeeded")
	}
	k.Drain()
	if sys.UsedBytes() != 0 {
		t.Fatal("memory retained after kmalloc drain")
	}
}

// An EBR-backed system: the whole facade works without quiescent
// states; SLUB over EBR is rejected.
func TestEBRBackedSystem(t *testing.T) {
	sys := newSystem(t, prudence.Config{
		CPUs:        4,
		MemoryPages: 2048,
		Reclamation: prudence.EBR,
	})
	if sys.AllocatorName() != "prudence" {
		t.Fatal("EBR system should default to the Prudence allocator")
	}
	c := sys.NewCache("ebrcache", 128)
	obj, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(obj.Bytes(), "epoch")
	c.FreeDeferred(0, obj)
	sys.Synchronize()
	if sys.GracePeriods() == 0 {
		t.Fatal("no grace periods under EBR")
	}

	// Read-side protection through the facade.
	done := make(chan struct{})
	obj2, _ := c.Malloc(0)
	copy(obj2.Bytes(), "pinned-data")
	data := obj2.Bytes()
	sys.RunOnAllCPUs(func(cpu int) {
		switch cpu {
		case 1:
			sys.ReadLock(1)
			<-done
			if string(data[:11]) != "pinned-data" {
				t.Error("EBR reader observed reclaimed memory")
			}
			sys.ReadUnlock(1)
		case 0:
			c.FreeDeferred(0, obj2)
			for i := 0; i < 50; i++ {
				o, err := c.Malloc(0)
				if err != nil {
					t.Error(err)
					break
				}
				copy(o.Bytes(), "XXXXXXXXXXXXXXX")
				c.Free(0, o)
			}
			close(done)
		}
	})

	// Data structures over the EBR-backed system.
	l := sys.NewList(c)
	if err := l.Insert(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	m := sys.NewMap(c, 8)
	if err := m.Put(0, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := m.Resize(0, 16); err != nil {
		t.Fatal(err)
	}
	tr := sys.NewTree(c)
	if err := tr.Put(0, 3, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := l.Delete(0, 1); !ok {
		t.Fatal("list delete")
	}
	if ok, _ := m.Delete(0, 2); !ok {
		t.Fatal("map delete")
	}
	if ok, _ := tr.Delete(0, 3); !ok {
		t.Fatal("tree delete")
	}
	c.Drain()
	if sys.UsedBytes() != 0 {
		t.Fatalf("%d bytes retained", sys.UsedBytes())
	}
}

// The registry lists the four built-in schemes, and each is a valid
// Config.Reclamation for BOTH allocators: the historical SLUB-requires-
// RCU restriction fell away when SLUB's deferred frees moved from raw
// RCU callbacks to the scheme-agnostic Retire surface.
func TestReclamationRegistry(t *testing.T) {
	regd := prudence.Reclamations()
	for _, want := range []string{"rcu", "ebr", "hp", "nebr"} {
		found := false
		for _, name := range regd {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scheme %q not registered (have %v)", want, regd)
		}
	}
	if err := (prudence.Config{Allocator: prudence.SLUB, Reclamation: prudence.EBR}).Validate(); err != nil {
		t.Fatalf("Validate rejected SLUB over EBR: %v", err)
	}
}

// Every registered scheme drives every allocator through the facade's
// full surface: caches, deferred frees under a pinned reader, the
// RCU-protected structures, and a clean drain to zero bytes.
// PRUDENCE_SCHEME narrows the sweep to one scheme (the CI matrix runs
// one job per scheme).
func TestWorkoutAllBackends(t *testing.T) {
	schemes := prudence.Reclamations()
	if only := os.Getenv("PRUDENCE_SCHEME"); only != "" {
		schemes = []string{only}
	}
	for _, scheme := range schemes {
		for _, kind := range []prudence.AllocatorKind{prudence.Prudence, prudence.SLUB} {
			t.Run(scheme+"/"+string(kind), func(t *testing.T) {
				sys := newSystem(t, prudence.Config{
					Allocator:   kind,
					CPUs:        4,
					MemoryPages: 2048,
					Reclamation: prudence.ReclamationKind(scheme),
				})
				c := sys.NewCache("workout", 128)

				// Deferred free racing a pinned reader on another CPU.
				obj, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				copy(obj.Bytes(), "pinned-data")
				data := obj.Bytes()
				done := make(chan struct{})
				sys.RunOnAllCPUs(func(cpu int) {
					switch cpu {
					case 1:
						sys.ReadLock(1)
						<-done
						if string(data[:11]) != "pinned-data" {
							t.Errorf("%s reader observed reclaimed memory", scheme)
						}
						sys.ReadUnlock(1)
					case 0:
						c.FreeDeferred(0, obj)
						for i := 0; i < 50; i++ {
							o, err := c.Malloc(0)
							if err != nil {
								t.Error(err)
								break
							}
							copy(o.Bytes(), "XXXXXXXXXXXXXXX")
							c.Free(0, o)
							sys.QuiescentState(0)
						}
						close(done)
					}
				})
				sys.Synchronize()
				if sys.GracePeriods() == 0 {
					t.Fatalf("no grace periods under %s", scheme)
				}

				// The RCU-protected structures over this backend.
				l := sys.NewList(c)
				if err := l.Insert(0, 1, []byte("a")); err != nil {
					t.Fatal(err)
				}
				m := sys.NewMap(c, 8)
				if err := m.Put(0, 2, []byte("b")); err != nil {
					t.Fatal(err)
				}
				if err := m.Resize(0, 16); err != nil {
					t.Fatal(err)
				}
				tr := sys.NewTree(c)
				if err := tr.Put(0, 3, []byte("c")); err != nil {
					t.Fatal(err)
				}
				if ok, _ := l.Delete(0, 1); !ok {
					t.Fatal("list delete")
				}
				if ok, _ := m.Delete(0, 2); !ok {
					t.Fatal("map delete")
				}
				if ok, _ := tr.Delete(0, 3); !ok {
					t.Fatal("tree delete")
				}
				c.Drain()
				if sys.UsedBytes() != 0 {
					t.Fatalf("%d bytes retained under %s/%s", sys.UsedBytes(), scheme, kind)
				}
			})
		}
	}
}

func TestDebugFacade(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 2, MemoryPages: 512})
	c := sys.NewCache("dbg", 128)
	d, err := c.EnableDebug(prudence.DebugConfig{RedZone: true, TrackOwners: true})
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(o.Bytes(), "guarded")
	if bad := d.CheckRedZones(); len(bad) != 0 {
		t.Fatalf("clean object flagged: %v", bad)
	}
	if got := d.Leaks(); got != "1 live objects (cpu0:1)" {
		t.Fatalf("Leaks = %q", got)
	}
	c.Free(0, o)
	if got := d.Leaks(); got != "no live objects" {
		t.Fatalf("Leaks after free = %q", got)
	}
	c.Drain()
}
