package prudence_test

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"prudence"
)

// sampleLine matches one Prometheus exposition sample:
// name{label="v",...} value
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// parseExposition validates the dump line by line and returns samples
// keyed "name{labels}" plus the set of distinct family names.
func parseExposition(t *testing.T, text string) (map[string]float64, map[string]bool) {
	t.Helper()
	samples := make(map[string]float64)
	families := make(map[string]bool)
	typed := make(map[string]bool) // families with a seen # TYPE line
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			typed[parts[2]] = true
			families[parts[2]] = true
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q appears before its # TYPE line", line)
		}
		v, err := strconv.ParseFloat(m[len(m)-1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[name+m[2]] = v
	}
	return samples, families
}

// System.WriteMetrics reflects a Malloc/FreeDeferred/Drain cycle on
// both allocators and both reclamation kinds, emits valid exposition
// text with at least 12 distinct families spanning the allocator, the
// reclamation engine and the page allocator, and the always-on trace
// ring records the cycle's slow-path events.
func TestSystemMetricsReflectWorkload(t *testing.T) {
	cases := []struct {
		name string
		cfg  prudence.Config
	}{
		{"prudence-rcu", prudence.Config{CPUs: 2, MemoryPages: 1024}},
		{"prudence-ebr", prudence.Config{CPUs: 2, MemoryPages: 1024, Reclamation: prudence.EBR}},
		{"slub-rcu", prudence.Config{CPUs: 2, MemoryPages: 1024, Allocator: prudence.SLUB}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSystem(t, tc.cfg)
			c := sys.NewCache("workload", 128)
			const ops = 50
			for i := 0; i < ops; i++ {
				o, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				c.FreeDeferred(0, o)
				sys.QuiescentState(0)
			}
			sys.Synchronize()
			c.Drain()

			var b strings.Builder
			if err := sys.WriteMetrics(&b); err != nil {
				t.Fatal(err)
			}
			samples, families := parseExposition(t, b.String())
			if len(families) < 12 {
				t.Fatalf("only %d distinct metric families: %v", len(families), families)
			}
			// Coverage must span the three layers.
			for _, want := range []string{
				"prudence_cache_allocs_total",  // allocator
				"prudence_gp_completed_total",  // reclamation engine
				"prudence_gp_duration_seconds", // reclamation engine latency
				"prudence_pages_free",          // page allocator
				"prudence_page_allocs_total",   // page allocator
				"prudence_vcpu_idle_ratio",     // vCPU machine
				"prudence_allocator_info",      // allocator identity
			} {
				if !families[want] {
					t.Errorf("family %q missing from exposition", want)
				}
			}
			key := `prudence_cache_allocs_total{cache="workload"}`
			if got := samples[key]; got < ops {
				t.Errorf("%s = %v, want >= %d", key, got, ops)
			}
			key = `prudence_cache_deferred_frees_total{cache="workload"}`
			if got := samples[key]; got != ops {
				t.Errorf("%s = %v, want %d", key, got, ops)
			}
			if got := samples["prudence_gp_completed_total"]; got < 1 {
				t.Errorf("prudence_gp_completed_total = %v, want >= 1", got)
			}
			// Every backend exports the expedited-advance counter, and the
			// cycle's blocking Synchronize/Drain raises expedited demand.
			if !families["prudence_sync_expedited_advances_total"] {
				t.Error("family prudence_sync_expedited_advances_total missing from exposition")
			}
			if got := samples["prudence_sync_expedited_advances_total"]; got < 1 {
				t.Errorf("prudence_sync_expedited_advances_total = %v, want >= 1", got)
			}
			// Epoch-family backends additionally export the shared retire
			// queue's backlog/batch gauges.
			if tc.cfg.Reclamation == prudence.EBR {
				for _, want := range []string{
					"prudence_sync_retire_backlog",
					"prudence_sync_retire_backlog_peak",
					"prudence_sync_retire_batch_size",
					"prudence_sync_retire_expedited_drains_total",
				} {
					if !families[want] {
						t.Errorf("family %q missing from exposition", want)
					}
				}
			}
			info := fmt.Sprintf(`prudence_allocator_info{allocator=%q}`, sys.AllocatorName())
			if got := samples[info]; got != 1 {
				t.Errorf("%s = %v, want 1", info, got)
			}
			// The human dump covers the same registry.
			if s := sys.Metrics(); !strings.Contains(s, "prudence_cache_allocs_total") {
				t.Error("Metrics() human dump missing cache counters")
			}
			// The always-on trace ring saw the cycle's slow-path events.
			ring := sys.Trace()
			if ring == nil {
				t.Fatal("Trace() = nil with default config")
			}
			if ring.Len() == 0 {
				t.Error("trace ring recorded no events")
			}
			counts := ring.Counts()
			// The first Malloc always grows the cache from zero slabs, so
			// a grow event is deterministic on every allocator; refills
			// follow each grow.
			if counts["grow"] == 0 {
				t.Errorf("trace ring saw no grow events: %v", counts)
			}
			if counts["refill"] == 0 {
				t.Errorf("trace ring saw no refill events: %v", counts)
			}
		})
	}
}

// A negative TraceRingSize disables tracing; a dedicated ring attached
// with SetTrace captures a cache's events.
func TestTraceRingConfig(t *testing.T) {
	sys := newSystem(t, prudence.Config{CPUs: 1, MemoryPages: 512, TraceRingSize: -1})
	if sys.Trace() != nil {
		t.Fatal("Trace() non-nil with tracing disabled")
	}
	c := sys.NewCache("quiet", 64)
	ring := prudence.NewTraceRing(128)
	if ring.Cap() != 128 {
		t.Fatalf("Cap = %d", ring.Cap())
	}
	c.SetTrace(ring)
	o, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	c.FreeDeferred(0, o)
	sys.Synchronize()
	c.Drain()
	if ring.Len() == 0 {
		t.Fatal("dedicated ring recorded no events")
	}
	if ring.Dump(10) == "" {
		t.Fatal("Dump returned nothing")
	}
}
