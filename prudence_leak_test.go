package prudence_test

import (
	"runtime"
	"testing"
	"time"

	"prudence"
)

// settleGoroutines waits for the goroutine count to return to base,
// dumping all stacks if it does not. Backends park their workers on
// channels that Stop closes, so teardown is prompt; the window only
// absorbs scheduler latency.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.NumGoroutine()
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d running, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseStopsAllGoroutines pins the long-running-service lifecycle:
// a System must not leak goroutines across New/Close, for any
// (allocator, scheme) pair, even when Close races a blocked Barrier
// whose sentinel grace period never elapses (the rcu Barrier waiter
// leak: a helper goroutine stuck in WaitGroup.Wait after Stop dropped
// the unelapsed sentinels).
func TestCloseStopsAllGoroutines(t *testing.T) {
	for _, ak := range []prudence.AllocatorKind{prudence.Prudence, prudence.SLUB} {
		for _, rk := range prudence.Reclamations() {
			t.Run(string(ak)+"/"+rk, func(t *testing.T) {
				base := runtime.NumGoroutine()

				// Normal lifecycle: traffic, drain, close.
				sys := prudence.MustNew(prudence.Config{
					Allocator:   ak,
					Reclamation: prudence.ReclamationKind(rk),
					CPUs:        4,
					MemoryPages: 2048,
					Arena:       prudence.ArenaHeap,
				})
				cache := sys.NewCache("leak", 128)
				sys.RunOnAllCPUs(func(cpu int) {
					for i := 0; i < 200; i++ {
						o, err := cache.Malloc(cpu)
						if err != nil {
							break
						}
						cache.FreeDeferred(cpu, o)
						sys.QuiescentState(cpu)
					}
				})
				cache.Drain()
				sys.Close()
				settleGoroutines(t, base)

				// Close racing a Barrier that cannot complete: a huge
				// grace-period interval keeps the drain's sentinels
				// unelapsed, so only the stop path can release it.
				sys = prudence.MustNew(prudence.Config{
					Allocator:           ak,
					Reclamation:         prudence.ReclamationKind(rk),
					CPUs:                2,
					MemoryPages:         1024,
					Arena:               prudence.ArenaHeap,
					GracePeriodInterval: 30 * time.Second,
				})
				cache = sys.NewCache("leak2", 128)
				sys.RunOnAllCPUs(func(cpu int) {
					o, err := cache.Malloc(cpu)
					if err != nil {
						return
					}
					cache.FreeDeferred(cpu, o)
				})
				drained := make(chan struct{})
				go func() {
					defer close(drained)
					cache.Drain()
				}()
				select {
				case <-drained:
					// Some schemes drive the retirement home early
					// (expedited demand skips the pacing gap); nothing
					// left to race.
				case <-time.After(50 * time.Millisecond):
				}
				sys.Close()
				select {
				case <-drained:
				case <-time.After(10 * time.Second):
					t.Fatal("Drain still blocked after Close")
				}
				settleGoroutines(t, base)
			})
		}
	}
}
