// Package prudence is the public API of this repository: a user-space
// reproduction of "Prudent Memory Reclamation in Procrastination-Based
// Synchronization" (ASPLOS 2016) — the Prudence dynamic memory
// allocator tightly integrated with an RCU grace-period engine, together
// with the SLUB-model baseline it is evaluated against.
//
// A System is a simulated machine: a fixed-size paged memory arena, a
// buddy page allocator, N virtual CPUs, an RCU engine, and one
// allocator (Prudence or the SLUB baseline). Caches created from the
// system hand out objects backed by real arena memory; FreeDeferred is
// the paper's turnkey deferred-free API, safe against concurrent RCU
// readers.
//
// Quickstart:
//
//	sys, err := prudence.New(prudence.Config{})
//	if err != nil {
//		log.Fatal(err)
//	}
//	defer sys.Close()
//	cache := sys.NewCache("my-objects", 256)
//	obj, _ := cache.Malloc(0)              // on CPU 0
//	copy(obj.Bytes(), "hello")
//	cache.FreeDeferred(0, obj)             // reclaimed after a grace period
//
// Every System carries an always-on observability layer: call Metrics
// for a human-readable dump or WriteMetrics for Prometheus exposition
// text, and Trace for the system event ring recording slow-path
// allocator activity.
//
// See examples/ for runnable programs and internal/bench for the
// harness regenerating every figure of the paper.
package prudence

import (
	"fmt"
	"io"
	"os"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/core"
	"prudence/internal/memarena"
	"prudence/internal/metrics"
	"prudence/internal/pagealloc"
	"prudence/internal/rcuhash"
	"prudence/internal/rculist"
	"prudence/internal/rcutree"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/trace"
	"prudence/internal/vcpu"
	"prudence/internal/view"

	// The built-in reclamation backends register themselves with the
	// internal/sync scheme registry from their init functions; external
	// code selects them by name through Config.Reclamation.
	_ "prudence/internal/ebr"
	_ "prudence/internal/hp"
	_ "prudence/internal/nebr"
	_ "prudence/internal/rcu"
)

// AllocatorKind selects which allocator a System uses.
type AllocatorKind string

// ArenaKind selects the backing store behind the simulated physical
// memory.
type ArenaKind string

// Available arena backends. Config.Arena resolves any backend
// registered with internal/memarena on this platform; see Arenas.
const (
	// ArenaHeap backs the arena with one GC-visible Go allocation — the
	// portable default. The Go runtime accounts and paces against the
	// arena, so GC activity pollutes memory-behaviour measurements at
	// large arena sizes.
	ArenaHeap ArenaKind = "heap"
	// ArenaMmap (linux only) backs the arena with an anonymous mmap
	// outside the Go heap: the GC never sees the arena, page-frame
	// costs are hardware costs, and System.Close unmaps it.
	ArenaMmap ArenaKind = "mmap"
)

// ArenaEnv is the environment variable consulted when Config.Arena is
// empty, so benchmarks and CI can switch backends without code changes.
const ArenaEnv = "PRUDENCE_ARENA"

// Arenas lists the arena backends available on this platform, sorted;
// each is a valid Config.Arena value.
func Arenas() []string { return memarena.Backends() }

// ReclamationKind selects the procrastination-based synchronization
// mechanism detecting reader completion.
type ReclamationKind string

// Available reclamation schemes. The constants name the built-in
// backends; Config.Reclamation resolves any name registered with the
// internal scheme registry, so the set is open-ended (see Reclamations).
const (
	// RCU detects reader completion through context-switch quiescent
	// states (the paper's evaluated mechanism). Workload loops should
	// call QuiescentState between operations.
	RCU ReclamationKind = "rcu"
	// EBR detects reader completion through epochs pinned by read-side
	// critical sections; no quiescent-state calls are needed.
	EBR ReclamationKind = "ebr"
	// HP protects individual pointers through per-CPU hazard slots and
	// reclaims by scanning them; its garbage is bounded by
	// threads x slots regardless of reader behaviour.
	HP ReclamationKind = "hp"
	// NEBR is DEBRA+-style neutralizing EBR: epochs as in EBR, plus a
	// per-CPU interrupt that forcibly unpins readers stalled past a
	// bound, so one stuck reader cannot block reclamation forever.
	NEBR ReclamationKind = "nebr"
)

// Reclamations lists the registered reclamation scheme names, sorted;
// each is a valid Config.Reclamation value.
func Reclamations() []string { return gsync.Backends() }

// Available allocators.
const (
	// Prudence is the paper's contribution: deferred objects are
	// visible to and reclaimed by the allocator (latent caches/slabs).
	Prudence AllocatorKind = "prudence"
	// SLUB is the baseline: deferred frees go through RCU callbacks and
	// are invisible to the allocator until processed.
	SLUB AllocatorKind = "slub"
)

// Config configures a System. The zero value gives a Prudence system
// with 8 virtual CPUs and a 64 MiB arena.
type Config struct {
	// Allocator selects Prudence (default) or the SLUB baseline.
	Allocator AllocatorKind
	// CPUs is the number of virtual CPUs (default 8).
	CPUs int
	// MemoryPages is the arena size in 4 KiB pages (default 16384,
	// i.e. 64 MiB).
	MemoryPages int
	// GracePeriodInterval is the minimum gap between RCU grace periods
	// (default 500µs).
	GracePeriodInterval time.Duration
	// CallbackBatch bounds RCU callback batches for the SLUB baseline
	// (default 10, the kernel's blimit).
	CallbackBatch int
	// CallbackDelay is the pause between callback batches (default
	// 200µs).
	CallbackDelay time.Duration
	// DisableOptimizations turns off all of Prudence's hint-based
	// optimizations (for ablation; Prudence allocator only).
	DisableOptimizations bool
	// Reclamation selects the synchronization mechanism by registered
	// scheme name (default RCU). Every registered scheme works with
	// both allocators; see Reclamations for the available names.
	Reclamation ReclamationKind
	// TraceRingSize is the capacity of the system event ring attached to
	// every cache (rounded up to a power of two). Zero uses the default
	// of 4096 events; a negative value disables tracing entirely.
	TraceRingSize int
	// Arena selects the memory backend behind the simulated arena by
	// registered backend name (see Arenas). Empty consults the
	// PRUDENCE_ARENA environment variable, then defaults to "heap".
	Arena ArenaKind
	// PressureWatermark arms the page allocator's memory-pressure
	// notification at the given used-page count and wires it to the
	// reclamation backend (expedited grace periods and lifted drain
	// batch limits, the paper's §3.5 kernel behaviour). Zero arms it at
	// 3/4 of MemoryPages; a negative value disables pressure wiring.
	PressureWatermark int
}

// arenaName resolves the effective arena backend: explicit Config value,
// then the PRUDENCE_ARENA environment variable, then the default.
func (cfg Config) arenaName() string {
	if cfg.Arena != "" {
		return string(cfg.Arena)
	}
	if env := os.Getenv(ArenaEnv); env != "" {
		return env
	}
	return memarena.DefaultBackend
}

// Validate reports the first configuration error, or nil if cfg (with
// defaults applied for zero fields) describes a buildable System.
func (cfg Config) Validate() error {
	if cfg.CPUs < 0 {
		return fmt.Errorf("prudence: negative CPU count %d", cfg.CPUs)
	}
	if cfg.MemoryPages < 0 {
		return fmt.Errorf("prudence: negative arena size %d pages", cfg.MemoryPages)
	}
	switch cfg.Allocator {
	case "", Prudence, SLUB:
	default:
		return fmt.Errorf("prudence: unknown allocator kind %q", cfg.Allocator)
	}
	if cfg.Reclamation != "" && !gsync.Registered(string(cfg.Reclamation)) {
		return fmt.Errorf("prudence: unknown reclamation kind %q (registered: %v)",
			cfg.Reclamation, gsync.Backends())
	}
	if name := cfg.arenaName(); !memarena.BackendAvailable(name) {
		return fmt.Errorf("prudence: unknown arena backend %q (available: %v)",
			name, memarena.Backends())
	}
	return nil
}

// PageSize is the size of one simulated page frame.
const PageSize = memarena.PageSize

// ErrOutOfMemory is returned by Malloc when the simulated machine's
// memory is exhausted.
var ErrOutOfMemory = pagealloc.ErrOutOfMemory

// ErrOOM is a short alias for ErrOutOfMemory (kernel spelling).
var ErrOOM = ErrOutOfMemory

// System is a simulated machine with one allocator. The reclamation
// engine behind sync is whichever registered backend Config.Reclamation
// named; nothing else in the System is scheme-specific.
type System struct {
	arena   *memarena.Arena
	pages   *pagealloc.Allocator
	machine *vcpu.Machine
	sync    gsync.Backend
	alloc   alloc.Allocator
	scheme  string
	reg     *metrics.Registry
	ring    *trace.Ring // nil when tracing is disabled
	zeroer  *pagealloc.Zeroer
}

// New builds and starts a System. It returns an error for an invalid
// configuration (see Config.Validate).
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 8
	}
	if cfg.MemoryPages <= 0 {
		cfg.MemoryPages = 16384
	}
	if cfg.Allocator == "" {
		cfg.Allocator = Prudence
	}
	if cfg.Reclamation == "" {
		cfg.Reclamation = RCU
	}
	s := &System{reg: metrics.NewRegistry(), scheme: string(cfg.Reclamation)}
	arena, err := memarena.NewBackend(cfg.arenaName(), cfg.MemoryPages)
	if err != nil {
		return nil, fmt.Errorf("prudence: %w", err)
	}
	s.arena = arena
	s.pages = pagealloc.New(s.arena)
	s.machine = vcpu.NewMachine(cfg.CPUs)
	s.zeroer = pagealloc.StartPreZero(s.pages, s.machine)
	if cfg.TraceRingSize >= 0 {
		size := cfg.TraceRingSize
		if size == 0 {
			size = 4096
		}
		s.ring = trace.NewRing(size)
	}
	backend, err := gsync.New(string(cfg.Reclamation), s.machine, gsync.Options{
		GPInterval:  cfg.GracePeriodInterval,
		RetireBatch: cfg.CallbackBatch,
		RetireDelay: cfg.CallbackDelay,
	})
	if err != nil {
		s.zeroer.Stop()
		s.machine.Stop()
		s.arena.Close()
		return nil, err
	}
	s.sync = backend
	switch cfg.Allocator {
	case SLUB:
		s.alloc = slub.New(s.pages, s.sync, cfg.CPUs)
	case Prudence:
		opts := core.Options{}
		if cfg.DisableOptimizations {
			opts = core.Options{
				DisablePartialRefill: true,
				DisablePreFlush:      true,
				DisablePreMove:       true,
				DisableSlabSelection: true,
			}
		}
		s.alloc = core.New(s.pages, s.sync, s.machine, opts)
	}
	if cfg.PressureWatermark >= 0 {
		wm := cfg.PressureWatermark
		if wm == 0 {
			wm = cfg.MemoryPages * 3 / 4
		}
		if ps, ok := s.sync.(gsync.PressureSetter); ok {
			s.pages.OnPressure(ps.SetPressure)
		}
		s.pages.SetPressureWatermark(wm)
	}
	s.pages.RegisterMetrics(s.reg)
	s.sync.RegisterMetrics(s.reg)
	s.alloc.RegisterMetrics(s.reg)
	s.machine.RegisterMetrics(s.reg)
	return s, nil
}

// MustNew builds and starts a System, panicking on configuration error.
// It is a convenience for tests and examples where the Config is a
// literal known to be valid.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Close stops the System's background goroutines and releases the
// arena's backing store. With the mmap arena this unmaps the memory, so
// no Object or Bytes slice obtained from the system may be touched
// after Close. Close is idempotent.
func (s *System) Close() {
	s.zeroer.Stop()
	s.sync.Stop()
	s.machine.Stop()
	s.arena.Close()
}

// ArenaName reports which memory backend is behind this system's arena.
func (s *System) ArenaName() string { return s.arena.Backend() }

// NumCPU returns the number of virtual CPUs.
func (s *System) NumCPU() int { return s.machine.NumCPU() }

// AllocatorName reports which allocator backs this system.
func (s *System) AllocatorName() string { return s.alloc.Name() }

// ReclamationName returns the registered name of the reclamation
// scheme behind this system.
func (s *System) ReclamationName() string { return s.scheme }

// UsedBytes returns the simulated physical memory currently in use.
func (s *System) UsedBytes() int64 { return s.arena.UsedBytes() }

// TotalBytes returns the simulated physical memory capacity.
func (s *System) TotalBytes() int64 { return s.arena.Bytes() }

// RunOnAllCPUs invokes fn concurrently on every virtual CPU, marking
// each CPU RCU-active for the duration, and waits for completion. fn
// must use the given cpu id for all allocator and RCU calls.
func (s *System) RunOnAllCPUs(fn func(cpu int)) {
	s.machine.RunOnAll(func(c *vcpu.CPU) {
		id := c.ID()
		s.sync.ExitIdle(id)
		defer s.sync.EnterIdle(id)
		fn(id)
	})
}

// ReadLock enters an RCU read-side critical section on cpu. The caller
// must own the CPU (be inside RunOnAllCPUs for that id, or otherwise
// guarantee exclusive use).
func (s *System) ReadLock(cpu int) { s.sync.ReadLock(cpu) }

// ReadUnlock leaves the read-side critical section on cpu.
func (s *System) ReadUnlock(cpu int) { s.sync.ReadUnlock(cpu) }

// QuiescentState reports a context-switch-equivalent point on cpu;
// RCU-backed loops should call it between operations. Epoch- and
// hazard-based schemes treat it as a no-op.
func (s *System) QuiescentState(cpu int) { s.sync.QuiescentState(cpu) }

// EnterIdle marks cpu idle for the reclamation backend. A goroutine
// that owns a vCPU and is about to block for an unbounded time (a
// server worker parking on an empty request queue) must enter idle
// first, or the backend will wait forever for a quiescent state that
// never comes and grace periods will stall system-wide.
func (s *System) EnterIdle(cpu int) { s.sync.EnterIdle(cpu) }

// ExitIdle marks cpu busy again after EnterIdle, before the owning
// goroutine touches any RCU-protected state.
func (s *System) ExitIdle(cpu int) { s.sync.ExitIdle(cpu) }

// Synchronize blocks until a full RCU grace period has elapsed.
func (s *System) Synchronize() { s.sync.Synchronize() }

// ExpediteReclaim raises expedited grace-period demand on the
// reclamation backend: the next grace period is driven as fast as the
// scheme's safety protocol allows, skipping pacing gaps. Long-running
// services call it when their own backpressure signals (a deep retire
// backlog, queue saturation) show reclamation falling behind the
// update rate.
func (s *System) ExpediteReclaim() { s.sync.ExpediteGP() }

// GracePeriods returns the number of grace periods completed.
func (s *System) GracePeriods() uint64 { return s.sync.GPsCompleted() }

// Metrics returns a human-readable dump of every metric the system
// exports: per-cache allocator counters, reclamation-engine activity,
// page-allocator occupancy and vCPU idle-work accounting.
func (s *System) Metrics() string { return s.reg.String() }

// WriteMetrics writes the same metrics in Prometheus exposition text
// format (text/plain; version=0.0.4), suitable for a /metrics endpoint.
func (s *System) WriteMetrics(w io.Writer) error { return s.reg.WritePrometheus(w) }

// GatherMetrics snapshots every metric into a flat name->value map
// (labels rendered into the name), for programmatic consumers such as
// backpressure monitors and load-test reports.
func (s *System) GatherMetrics() map[string]float64 { return s.reg.Gather() }

// TraceRing is a fixed-capacity event ring recording slow-path
// allocator activity (refills, flushes, grows, shrinks, pre-moves,
// merges, grace-period waits, OOMs). Recording is wait-free and rings
// overwrite their oldest entries when full.
type TraceRing struct{ r *trace.Ring }

// NewTraceRing creates a standalone ring holding up to capacity events
// (rounded up to a power of two, minimum 16) for use with
// Cache.SetTrace.
func NewTraceRing(capacity int) *TraceRing {
	return &TraceRing{r: trace.NewRing(capacity)}
}

// Trace returns the system-wide event ring every cache records into by
// default, or nil when the system was configured with a negative
// TraceRingSize.
func (s *System) Trace() *TraceRing {
	if s.ring == nil {
		return nil
	}
	return &TraceRing{r: s.ring}
}

// Dump renders the trailing max events, oldest first (all retained
// events when max <= 0).
func (t *TraceRing) Dump(max int) string { return t.r.Dump(max) }

// Counts tallies the retained events by kind name.
func (t *TraceRing) Counts() map[string]int {
	out := make(map[string]int)
	for k, n := range t.r.CountByKind() {
		out[k.String()] = n
	}
	return out
}

// Len returns how many events have ever been recorded (not the number
// retained).
func (t *TraceRing) Len() int { return t.r.Len() }

// Cap returns the ring's capacity.
func (t *TraceRing) Cap() int { return t.r.Cap() }

// Object is a handle to allocated memory inside the simulated arena.
type Object struct {
	ref slabcore.Ref
}

// IsZero reports whether the Object is the invalid zero handle.
func (o Object) IsZero() bool { return o.ref.IsZero() }

// Bytes returns the object's memory. The slice aliases arena memory and
// must not be used after the object is freed (after a deferred free it
// may be read until the surrounding read-side critical section ends,
// per RCU rules).
func (o Object) Bytes() []byte { return o.ref.Bytes() }

// View returns a typed view of the object's memory: a *T aliasing the
// same arena bytes as o.Bytes(). T must be free of Go pointers and fit
// the cache's object size; violations panic (they are layout bugs in
// the caller, and — with the mmap arena — pointer-bearing types would
// hide references from the garbage collector). The lifetime rules of
// Bytes apply unchanged.
func View[T any](o Object) *T { return view.Of[T](o.Bytes()) }

// ViewSlice returns the object's memory as a slice of n Ts, with the
// same constraints as View.
func ViewSlice[T any](o Object, n int) []T { return view.Slice[T](o.Bytes(), n) }

// CacheStats is a snapshot of a cache's counters, matching the
// attributes reported in the paper's evaluation.
type CacheStats = stats.AllocSnapshot

// Cache is a named pool of fixed-size objects.
type Cache struct {
	c   alloc.Cache
	sys *System
}

// NewCache creates a slab cache with SLUB-style default sizing for the
// object size. The system's trace ring is attached unless tracing was
// disabled; use SetTrace to attach a dedicated ring instead.
func (s *System) NewCache(name string, objectSize int) *Cache {
	cfg := slabcore.DefaultConfig(name, objectSize, s.machine.NumCPU())
	c := &Cache{c: s.alloc.NewCache(cfg), sys: s}
	if s.ring != nil {
		c.c.SetTrace(s.ring)
	}
	return c
}

// SetTrace attaches a dedicated event ring to this cache, replacing the
// system-wide ring (nil detaches tracing from the cache entirely).
func (c *Cache) SetTrace(t *TraceRing) {
	if t == nil {
		c.c.SetTrace(nil)
		return
	}
	c.c.SetTrace(t.r)
}

// Name returns the cache name.
func (c *Cache) Name() string { return c.c.Name() }

// ObjectSize returns the object size in bytes.
func (c *Cache) ObjectSize() int { return c.c.ObjectSize() }

// Malloc allocates an object on the calling CPU.
func (c *Cache) Malloc(cpu int) (Object, error) {
	ref, err := c.c.Malloc(cpu)
	return Object{ref: ref}, err
}

// Free immediately returns an object to the cache.
func (c *Cache) Free(cpu int, o Object) { c.c.Free(cpu, o.ref) }

// FreeDeferred defers the freeing of an object until every RCU reader
// that might hold a reference has finished — the paper's Listing 2
// turnkey API. The allocator (not the caller, not an RCU callback)
// reclaims the memory at the right time.
func (c *Cache) FreeDeferred(cpu int, o Object) { c.c.FreeDeferred(cpu, o.ref) }

// Stats snapshots the cache's counters.
func (c *Cache) Stats() CacheStats { return c.c.Counters().Snapshot() }

// Fragmentation returns the paper's total fragmentation metric
// (allocated bytes / requested bytes) with its components.
func (c *Cache) Fragmentation() (ft float64, allocatedBytes, requestedBytes int64) {
	return c.c.Fragmentation()
}

// Drain flushes all cached and deferred objects back to the arena,
// waiting out grace periods as needed. Use at teardown or between
// measurement phases.
func (c *Cache) Drain() { c.c.Drain() }

// List is an RCU-protected linked list (the paper's Figure 1 structure)
// whose element payloads live in a Cache.
type List struct{ l *rculist.List }

// NewList creates an RCU-protected list backed by cache.
func (s *System) NewList(cache *Cache) *List {
	return &List{l: rculist.New(cache.c, s.sync)}
}

// Insert adds key with value at the head.
func (l *List) Insert(cpu int, key uint64, value []byte) error {
	return l.l.Insert(cpu, key, value)
}

// Lookup copies key's value into buf inside a read-side critical
// section.
func (l *List) Lookup(cpu int, key uint64, buf []byte) (int, bool) {
	return l.l.Lookup(cpu, key, buf)
}

// Update performs the Figure 1 copy-update: new allocation, publish,
// defer-free the old version.
func (l *List) Update(cpu int, key uint64, value []byte) (bool, error) {
	return l.l.Update(cpu, key, value)
}

// Delete unlinks key and defer-frees its payload.
func (l *List) Delete(cpu int, key uint64) (bool, error) {
	return l.l.Delete(cpu, key)
}

// Walk visits each element inside a read-side critical section.
func (l *List) Walk(cpu int, fn func(key uint64, value []byte) bool) {
	l.l.Walk(cpu, fn)
}

// Len returns the element count.
func (l *List) Len() int { return l.l.Len() }

// Map is an RCU-protected hash table over list buckets.
type Map struct{ m *rcuhash.Map }

// NewMap creates an RCU-protected hash map with the given power-of-two
// bucket count, backed by cache.
func (s *System) NewMap(cache *Cache, buckets int) *Map {
	return &Map{m: rcuhash.New(cache.c, s.sync, buckets)}
}

// Put inserts or copy-updates key.
func (m *Map) Put(cpu int, key uint64, value []byte) error {
	return m.m.Put(cpu, key, value)
}

// Get copies key's value into buf inside a read-side critical section.
func (m *Map) Get(cpu int, key uint64, buf []byte) (int, bool) {
	return m.m.Get(cpu, key, buf)
}

// Delete removes key, defer-freeing its payload.
func (m *Map) Delete(cpu int, key uint64) (bool, error) {
	return m.m.Delete(cpu, key)
}

// ForEach visits every entry.
func (m *Map) ForEach(cpu int, fn func(key uint64, value []byte) bool) {
	m.m.ForEach(cpu, fn)
}

// Resize rebuilds the table with a new power-of-two bucket count.
func (m *Map) Resize(cpu, buckets int) error { return m.m.Resize(cpu, buckets) }

// Len returns the entry count.
func (m *Map) Len() int { return m.m.Len() }

// Buckets returns the current bucket count.
func (m *Map) Buckets() int { return m.m.Buckets() }

// Tree is an RCU-protected ordered map (a copy-on-update treap, the
// §3.1 structure whose rebalancing defers multiple objects per update).
type Tree struct{ t *rcutree.Tree }

// NewTree creates an RCU-protected ordered map backed by cache.
func (s *System) NewTree(cache *Cache) *Tree {
	return &Tree{t: rcutree.New(cache.c, s.sync)}
}

// Put inserts or copy-updates key; the rebuilt path's old payloads are
// defer-freed.
func (t *Tree) Put(cpu int, key uint64, value []byte) error {
	return t.t.Put(cpu, key, value)
}

// Get copies key's value into buf inside a read-side critical section.
func (t *Tree) Get(cpu int, key uint64, buf []byte) (int, bool) {
	return t.t.Get(cpu, key, buf)
}

// Delete removes key, defer-freeing its payload and the rebuilt path's.
func (t *Tree) Delete(cpu int, key uint64) (bool, error) {
	return t.t.Delete(cpu, key)
}

// Range visits keys in [from, to] in ascending order.
func (t *Tree) Range(cpu int, from, to uint64, fn func(key uint64, value []byte) bool) {
	t.t.Range(cpu, from, to, fn)
}

// Min returns the smallest key, if any.
func (t *Tree) Min(cpu int) (uint64, bool) { return t.t.Min(cpu) }

// Max returns the largest key, if any.
func (t *Tree) Max(cpu int) (uint64, bool) { return t.t.Max(cpu) }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.t.Len() }

// Kmalloc is a size-class allocation front (kmalloc-64 … kmalloc-4096)
// like the kernel's kmalloc, routing each request to the smallest class
// that fits.
type Kmalloc struct {
	k   *alloc.Kmalloc
	sys *System
}

// NewKmalloc creates the kmalloc size-class caches on this system.
func (s *System) NewKmalloc() *Kmalloc {
	return &Kmalloc{k: alloc.NewKmalloc(s.alloc, s.machine.NumCPU()), sys: s}
}

// Malloc allocates size bytes on cpu. The returned object's Bytes() is
// the full size class, which may exceed the request.
func (k *Kmalloc) Malloc(cpu, size int) (Object, error) {
	ref, err := k.k.Malloc(cpu, size)
	return Object{ref: ref}, err
}

// Free immediately returns an object allocated by this front.
func (k *Kmalloc) Free(cpu int, o Object) { k.k.Free(cpu, o.ref) }

// FreeDeferred defers the freeing of an object allocated by this front
// until a grace period has elapsed.
func (k *Kmalloc) FreeDeferred(cpu int, o Object) { k.k.FreeDeferred(cpu, o.ref) }

// Drain flushes all size-class caches back to the arena.
func (k *Kmalloc) Drain() {
	for _, c := range k.k.Caches() {
		c.Drain()
	}
}

// DebugConfig selects allocator debugging features (SLUB_DEBUG-style).
type DebugConfig = slabcore.DebugConfig

// Debugger inspects a debug-enabled cache: red-zone scans and leak
// reports.
type Debugger struct{ d *slabcore.Debugger }

// EnableDebug attaches red zones and/or allocation owner tracking to
// the cache. Red zones change the object layout, so they must be
// enabled before the cache's first allocation. Both built-in allocators
// (Prudence and SLUB) support debugging; an error is returned if the
// cache's backing allocator does not.
func (c *Cache) EnableDebug(cfg DebugConfig) (*Debugger, error) {
	type enabler interface {
		EnableDebug(slabcore.DebugConfig) *slabcore.Debugger
	}
	e, ok := c.c.(enabler)
	if !ok {
		return nil, fmt.Errorf("prudence: allocator %q does not support debugging on cache %q",
			c.sys.AllocatorName(), c.Name())
	}
	return &Debugger{d: e.EnableDebug(cfg)}, nil
}

// CheckRedZones scans all guard bytes and returns descriptions of
// corrupted objects (empty when clean).
func (d *Debugger) CheckRedZones() []string { return d.d.CheckRedZones() }

// Leaks reports objects allocated but never freed, attributed to the
// allocating CPU.
func (d *Debugger) Leaks() string { return d.d.Leaks().String() }
