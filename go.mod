module prudence

go 1.22
